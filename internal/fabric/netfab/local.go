package netfab

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"samsys/internal/fabric"
	"samsys/internal/machine"
	"samsys/internal/sim"
	"samsys/internal/stats"
	"samsys/internal/trace"
)

// Cluster runs n netfab nodes inside one process, each a full Fab talking
// real TCP over loopback. Nothing is shared between the nodes except the
// sockets, so this exercises the entire wire path — encode, frame, batch,
// dial, decode — while remaining a single address space that the race
// detector and the in-process test harness can see. It implements
// fabric.Fabric with the same aggregate semantics as simfab and gofab.
type Cluster struct {
	fabs    []*Fab
	elapsed sim.Time
}

// NewLocal bootstraps an n-node loopback cluster; functional options
// (WithBootTimeout, WithAckWindow, ...) override the Options defaults.
// The rendezvous listener is bound first so every rank knows the address
// before any rank joins.
func NewLocal(prof machine.Profile, n int, opts ...Option) (*Cluster, error) {
	return NewLocalOpts(prof, n, Options{}.Apply(opts...))
}

// NewLocalOpts is NewLocal with explicit timeout/window Options, shared by
// every rank in the cluster.
func NewLocalOpts(prof machine.Profile, n int, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("netfab: need at least one node, got %d", n)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netfab: rendezvous listen: %w", err)
	}
	cl := &Cluster{fabs: make([]*Fab, n)}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		cfg := Config{
			Rank: rank, N: n,
			Rendezvous: ln.Addr().String(),
			Profile:    prof,
			Opts:       opts,
		}
		if rank == 0 {
			cfg.Listener = ln
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl.fabs[rank], errs[rank] = Join(cfg)
		}()
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			for _, f := range cl.fabs {
				if f != nil {
					f.shutdown()
				}
			}
			return nil, fmt.Errorf("netfab: rank %d join: %w", rank, err)
		}
	}
	return cl, nil
}

// N returns the node count.
func (cl *Cluster) N() int { return cl.fabs[0].n }

// Profile returns the machine profile used for accounting.
func (cl *Cluster) Profile() machine.Profile { return cl.fabs[0].prof }

// Fab returns one rank's fabric — for per-rank surfaces like
// SetClientHandler and Addr that have no cluster-wide form.
func (cl *Cluster) Fab(rank int) *Fab { return cl.fabs[rank] }

// SetHandler installs the message handler on every node.
func (cl *Cluster) SetHandler(h fabric.Handler) {
	for _, f := range cl.fabs {
		f.SetHandler(h)
	}
}

// SetTracer attaches one recorder to every node; the recorder's own
// locking merges the per-node event streams.
func (cl *Cluster) SetTracer(r *trace.Recorder) {
	for _, f := range cl.fabs {
		f.SetTracer(r)
	}
}

// Run executes app on every node concurrently and returns when the whole
// cluster has finished. Node errors are joined so a cluster-wide failure
// (for example an injected rank kill) reports every rank's view.
func (cl *Cluster) Run(app func(c fabric.Ctx)) error {
	errs := make([]error, len(cl.fabs))
	var wg sync.WaitGroup
	for i, f := range cl.fabs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = f.Run(app)
		}()
	}
	wg.Wait()
	for _, f := range cl.fabs {
		if f.elapsed > cl.elapsed {
			cl.elapsed = f.elapsed
		}
	}
	return errors.Join(errs...)
}

// InjectKill fails the given rank's Fab as if its process had died. It
// implements the fault-injection Killer interface used by faultfab.
func (cl *Cluster) InjectKill(rank int, reason string) bool {
	if rank < 0 || rank >= len(cl.fabs) {
		return false
	}
	return cl.fabs[rank].InjectKill(rank, reason)
}

// InjectLinkReset closes the src->dst data connection, if it is up. It
// implements the fault-injection LinkResetter interface used by faultfab.
func (cl *Cluster) InjectLinkReset(src, dst int) bool {
	if src < 0 || src >= len(cl.fabs) {
		return false
	}
	return cl.fabs[src].InjectLinkReset(src, dst)
}

// Elapsed returns the longest per-node run time.
func (cl *Cluster) Elapsed() sim.Time { return cl.elapsed }

// Counters returns node i's counters, read from node i's Fab.
func (cl *Cluster) Counters(node int) *stats.Counters {
	return cl.fabs[node].Counters(node)
}

// Report merges the per-rank reports into one cluster-wide breakdown.
func (cl *Cluster) Report() []stats.NodeReport {
	reports := make([]stats.NodeReport, len(cl.fabs))
	for i, f := range cl.fabs {
		reports[i] = f.Report()[i]
		reports[i].Total = cl.elapsed
	}
	return reports
}

var _ fabric.Fabric = (*Cluster)(nil)
