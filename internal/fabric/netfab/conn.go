package netfab

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"samsys/internal/trace"
	"samsys/internal/wire"
)

// Frame kinds. Every TCP segment stream is a sequence of length-prefixed
// frames (uvarint byte count, then the body); the first body byte is the
// kind. A connection's first frame declares its role: frRegister opens a
// control connection to the rendezvous node, frHello opens a one-way data
// link. Control frames implement the bootstrap, the end-of-run barrier and
// cluster-wide abort; frData carries one fabric message. frAck flows in
// the reverse direction of a data link (TCP is full duplex): the acceptor
// acknowledges the highest per-link sequence number it has accepted, which
// lets the dialer trim its resend window.
const (
	frRegister = iota + 1 // peer -> rank 0: rank, n, listen addr, registry hash, shm host+dir
	frWelcome             // rank 0 -> peer: n, addrs[0..n), registry hash, boot id, shm maps
	frReady               // peer -> rank 0: received the address map
	frGo                  // rank 0 -> peer: everyone is ready, start Run
	frDone                // peer -> rank 0: local application process finished
	frAllDone             // rank 0 -> peer: every application finished, shut down
	frHello               // dialer -> acceptor: src rank, resume flag
	frData                // one fabric message: modeled size, per-link seq, payload
	frAck                 // acceptor -> dialer: cumulative accepted per-link seq
	frAbort               // control plane, both directions: origin rank, reason
	frClient              // external client -> any rank: registry hash (see client.go)
)

// maxFrame bounds a frame body; data items are at most a few hundred MB in
// any reasonable run, and a hostile length must not allocate unbounded
// memory.
const maxFrame = 1 << 30

// writeFrame appends the uvarint length prefix and body to w. The caller
// decides when to Flush (the per-peer writer batches). The prefix goes
// through a stack array so the hot path allocates nothing.
func writeFrame(w *bufio.Writer, body []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(body)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame body.
func readFrame(r *bufio.Reader) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("netfab: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		c, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, fmt.Errorf("netfab: frame length overflows uint64")
			}
			return x | uint64(c)<<s, nil
		}
		if i == 9 {
			return 0, fmt.Errorf("netfab: frame length overflows uint64")
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
}

// dialRetry dials addr until it succeeds or the deadline passes, backing
// off exponentially from backoff to backoffMax between attempts (the
// Options.DialBackoff bounds). Peers of a cluster start in arbitrary
// order, so early dials routinely hit "connection refused" — retry is part
// of the bootstrap contract, not error handling. The same loop is the
// reconnect path after a data-link failure.
func dialRetry(addr string, deadline time.Time, backoff, backoffMax time.Duration) (net.Conn, error) {
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true) // frames are batched by the writer, not the kernel
			}
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("netfab: dial %s: %w", addr, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// outCap bounds each outgoing peer queue (frames). A full queue makes Send
// service the local inbox while retrying, mirroring gofab's backpressure.
const outCap = 1 << 12

// outFrame is one queued data frame plus its per-link sequence number;
// the sequence orders the resend window and lets acks trim it. body
// aliases enc's buffer; once the frame is acked the encoder returns to
// the wire pool, so the body must not be touched after trimAcked drops
// the frame.
type outFrame struct {
	seq  int64
	body []byte
	enc  *wire.Encoder
}

// peer is one outgoing data link: a dialed connection, a writer goroutine
// that batches queued frames into single flushes and keeps the
// unacknowledged window for resend, and one ack-reader goroutine per
// connection incarnation.
type peer struct {
	dst    int
	out    chan outFrame
	notify chan struct{} // coalesced ping: ack progress or connection error

	mu      sync.Mutex
	conn    net.Conn // current connection (InjectLinkReset closes it)
	gen     int      // connection incarnation; stale ack readers go quiet
	acked   int64    // cumulative acked seq from the receiver
	connErr bool     // current incarnation saw a read error (ack side)
}

// ping wakes the writer without blocking; multiple pings coalesce.
func (p *peer) ping() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// status snapshots the ack watermark and whether the current connection is
// known broken.
func (p *peer) status() (acked int64, broken bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked, p.connErr
}

// setConn installs a new connection incarnation and returns its generation.
func (p *peer) setConn(conn net.Conn) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn = conn
	p.gen++
	p.connErr = false
	return p.gen
}

// closeConn closes the current connection, if any.
func (p *peer) closeConn() {
	p.mu.Lock()
	c := p.conn
	p.conn = nil
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// sendHello writes the link-opening frame directly (it is not part of the
// sequenced data stream and must precede any resend).
func (f *Fab) sendHello(conn net.Conn, resume bool) error {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	e.Uint8(frHello)
	e.Int(f.rank)
	e.Bool(resume)
	bw := bufio.NewWriter(conn)
	conn.SetWriteDeadline(time.Now().Add(f.opts.Write))
	defer conn.SetWriteDeadline(time.Time{})
	if err := writeFrame(bw, e.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// newPeer dials dst's listener, sends the link hello and starts the
// batching writer and the ack reader.
func (f *Fab) newPeer(dst int) (*peer, error) {
	conn, err := dialRetry(f.addrs[dst], time.Now().Add(f.opts.Boot),
		f.opts.DialBackoff, f.opts.DialBackoffMax)
	if err != nil {
		return nil, fmt.Errorf("link %d->%d: %w", f.rank, dst, err)
	}
	p := &peer{dst: dst, out: make(chan outFrame, outCap), notify: make(chan struct{}, 1)}
	if err := f.sendHello(conn, false); err != nil {
		conn.Close()
		return nil, fmt.Errorf("link %d->%d: hello: %w", f.rank, dst, err)
	}
	gen := p.setConn(conn)
	go f.ackLoop(p, conn, gen)
	go f.writeLoop(p, conn)
	return p, nil
}

// ackLoop consumes cumulative acks flowing back on one incarnation of a
// data link. On a read error it flags the incarnation broken so the writer
// redials even if it has nothing new to send — frames may sit unacked in a
// dead TCP buffer with no further sends to flush them out.
func (f *Fab) ackLoop(p *peer, conn net.Conn, gen int) {
	br := bufio.NewReader(conn)
	for {
		body, err := readFrame(br)
		if err != nil {
			p.mu.Lock()
			if p.gen == gen && !f.closing.Load() {
				p.connErr = true
			}
			p.mu.Unlock()
			p.ping()
			return
		}
		d := wire.NewDecoder(body)
		if kind := d.Uint8(); kind != frAck {
			f.fatalf("link %d->%d: unexpected reverse frame kind %d", f.rank, p.dst, kind)
			return
		}
		cum := d.Varint()
		if d.Err() != nil {
			f.fatalf("link %d->%d: bad ack: %v", f.rank, p.dst, d.Err())
			return
		}
		p.mu.Lock()
		if cum > p.acked {
			p.acked = cum
		}
		p.mu.Unlock()
		p.ping()
	}
}

// trimAcked drops acknowledged frames from the front of the window,
// returning their encode buffers to the wire pool — the receiver has
// accepted them, so no resend can need the bytes again.
func trimAcked(unacked []outFrame, acked int64) []outFrame {
	i := 0
	for i < len(unacked) && unacked[i].seq <= acked {
		wire.PutEncoder(unacked[i].enc)
		unacked[i].enc = nil
		unacked[i].body = nil
		i++
	}
	return unacked[i:]
}

// writeLoop writes queued frames, coalescing every frame already in the
// queue into one buffered write and flushing only when the queue drains
// momentarily. Every written frame stays in the unacknowledged window
// until the receiver's cumulative ack covers it; a connection error — a
// real reset, a write timeout, or an injected fault — triggers a redial
// and a resend of the whole window (the receiver suppresses duplicates by
// sequence number). Closing p.out flushes and closes the connection.
func (f *Fab) writeLoop(p *peer, conn net.Conn) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	var unacked []outFrame
	fail := func() bool { // returns false when the link is lost for good
		conn, bw = f.redial(p, &unacked)
		return bw != nil
	}
	for {
		acked, broken := p.status()
		unacked = trimAcked(unacked, acked)
		if broken {
			if !fail() {
				return
			}
			continue
		}
		if len(unacked) >= f.opts.AckWindow {
			// Window full: wait for ack progress (or a link/fabric failure).
			select {
			case <-p.notify:
			case <-f.stop:
				return
			}
			continue
		}
		var of outFrame
		var ok bool
		select {
		case of, ok = <-p.out:
		case <-p.notify:
			continue
		case <-f.stop:
			return
		}
		if !ok {
			bw.Flush()
			p.closeConn()
			return
		}
		werr := false
		closed := false
	batch:
		for {
			unacked = append(unacked, of)
			conn.SetWriteDeadline(time.Now().Add(f.opts.Write))
			if err := writeFrame(bw, of.body); err != nil {
				werr = true
				break batch
			}
			if len(unacked) >= f.opts.AckWindow {
				break batch
			}
			select {
			case of, ok = <-p.out:
				if !ok {
					closed = true
					break batch
				}
			default:
				break batch
			}
		}
		if !werr {
			conn.SetWriteDeadline(time.Now().Add(f.opts.Write))
			if err := bw.Flush(); err != nil {
				werr = true
			}
		}
		if werr {
			if !fail() {
				return
			}
			if closed {
				// Shutdown raced the failure; the redial already resent
				// everything outstanding.
				bw.Flush()
				p.closeConn()
				return
			}
			continue
		}
		if closed {
			p.closeConn()
			return
		}
	}
}

// redial re-establishes a failed data link within the LinkRetry window and
// resends the unacknowledged frames. On success it returns the new
// connection; if the window expires (or the fabric is shutting down) it
// reports the link unrecoverable — a fatal fabric error.
func (f *Fab) redial(p *peer, unacked *[]outFrame) (net.Conn, *bufio.Writer) {
	p.closeConn()
	if f.closing.Load() {
		return nil, nil
	}
	if tr := f.tr; tr != nil {
		tr.Emit(trace.Event{Node: int32(f.rank), Kind: trace.EvLinkDown,
			Peer: int32(p.dst), Aux: 1})
	}
	deadline := time.Now().Add(f.opts.LinkRetry)
	for attempt := 1; ; attempt++ {
		if f.closing.Load() {
			return nil, nil
		}
		conn, err := dialRetry(f.addrs[p.dst], deadline,
			f.opts.DialBackoff, f.opts.DialBackoffMax)
		if err != nil {
			f.fatalf("link %d->%d: reconnect: %v", f.rank, p.dst, err)
			return nil, nil
		}
		if err := f.sendHello(conn, true); err != nil {
			conn.Close()
			if time.Now().After(deadline) {
				f.fatalf("link %d->%d: reconnect hello: %v", f.rank, p.dst, err)
				return nil, nil
			}
			continue
		}
		gen := p.setConn(conn)
		go f.ackLoop(p, conn, gen)
		// Resend everything not yet acknowledged. The receiver drops
		// duplicates by sequence number, so resending an already-accepted
		// frame is safe; losing one would not be.
		acked, _ := p.status()
		*unacked = trimAcked(*unacked, acked)
		bw := bufio.NewWriterSize(conn, 64<<10)
		ok := true
		for _, of := range *unacked {
			conn.SetWriteDeadline(time.Now().Add(f.opts.Write))
			if err := writeFrame(bw, of.body); err != nil {
				ok = false
				break
			}
		}
		if ok {
			conn.SetWriteDeadline(time.Now().Add(f.opts.Write))
			ok = bw.Flush() == nil
		}
		if !ok {
			conn.Close()
			if time.Now().After(deadline) {
				f.fatalf("link %d->%d: resend failed within retry window", f.rank, p.dst)
				return nil, nil
			}
			continue
		}
		if tr := f.tr; tr != nil {
			tr.Emit(trace.Event{Node: int32(f.rank), Kind: trace.EvLinkRedial,
				Peer: int32(p.dst), Aux: int64(attempt), Aux2: int64(len(*unacked))})
		}
		return conn, bw
	}
}

// inLink is the receive-side state of one (src, this rank) data link. It
// survives connection incarnations: lastSeq is the exactly-once watermark
// that makes a resent window idempotent. The mutex serializes the
// check-and-enqueue of overlapping readLoops (the old incarnation may
// still be draining buffered frames when the resumed one starts).
type inLink struct {
	mu       sync.Mutex
	lastSeq  int64 // highest seq accepted into the inbox
	accepted int   // frames accepted since the last cumulative ack
}

// acceptLoop accepts incoming connections for the fabric's whole lifetime:
// control registrations during bootstrap (rank 0) and data links any time
// — including resumed incarnations after a link failure.
func (f *Fab) acceptLoop() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			if !f.closing.Load() {
				f.fatalf("accept: %v", err)
			}
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		go f.serveConn(conn)
	}
}

// serveConn classifies a new connection by its first frame and serves it.
// A connection that dies or talks garbage before classifying itself is
// dropped, not fatal: a long-lived service rank accepts from the open
// network, and a half-open probe or a client that gave up mid-dial must
// not take the cluster down. Failures after classification — on rank and
// control links, whose peers are known cluster members — stay fatal.
func (f *Fab) serveConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	body, err := readFrame(br)
	if err != nil {
		conn.Close()
		return
	}
	d := wire.NewDecoder(body)
	switch kind := d.Uint8(); kind {
	case frRegister:
		if f.rank != 0 {
			f.fatalf("registration frame on non-rendezvous node %d", f.rank)
			conn.Close()
			return
		}
		rank := d.Int()
		n := d.Int()
		addr := d.String()
		hash := d.Uvarint()
		host := d.String()
		shmDir := d.String()
		if d.Err() != nil {
			f.fatalf("bad registration: %v", d.Err())
			conn.Close()
			return
		}
		f.boot.regCh <- registration{conn: conn, br: br, rank: rank, n: n,
			addr: addr, hash: hash, host: host, shmDir: shmDir}
	case frHello:
		src := d.Int()
		resume := d.Bool()
		if d.Err() != nil || src < 0 || src >= f.n {
			f.fatalf("bad link hello from %s", conn.RemoteAddr())
			conn.Close()
			return
		}
		f.readLoop(conn, br, src, resume)
	case frClient:
		f.serveClient(conn, br, d)
	default:
		conn.Close()
	}
}

// sendAck writes one cumulative ack back to the dialer on the data
// connection's reverse direction.
func (f *Fab) sendAck(conn net.Conn, bw *bufio.Writer, seq int64) error {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	e.Uint8(frAck)
	e.Varint(seq)
	conn.SetWriteDeadline(time.Now().Add(f.opts.Write))
	if err := writeFrame(bw, e.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// readLoop decodes data frames from one incarnation of an incoming link
// and queues them on the node's inbox. Per-link FIFO and exactly-once
// delivery are enforced structurally: under the link mutex a frame is
// accepted only if its sequence number is exactly lastSeq+1 — smaller is a
// duplicate from a resent window (suppressed, traced), larger is a hole
// the resend protocol can never produce (fatal). A connection error here
// is not fatal: the dialer owns link repair and will resume with a fresh
// connection, so this side just goes quiet.
func (f *Fab) readLoop(conn net.Conn, br *bufio.Reader, src int, resume bool) {
	defer conn.Close()
	link := f.inLinks[src]
	bw := bufio.NewWriter(conn)
	if resume {
		// Re-ack the watermark immediately so the dialer trims the resend
		// window it is about to replay.
		link.mu.Lock()
		last := link.lastSeq
		link.mu.Unlock()
		if err := f.sendAck(conn, bw, last); err != nil {
			return
		}
	}
	for {
		body, err := readFrame(br)
		if err != nil {
			// EOF after the cluster finished is the normal link teardown;
			// any other error is the dialer's to repair.
			if !f.closing.Load() && err != io.EOF {
				if tr := f.tr; tr != nil {
					tr.Emit(trace.Event{Node: int32(f.rank), Kind: trace.EvLinkDown,
						Peer: int32(src), Aux: 0})
				}
			}
			return
		}
		d := wire.NewDecoder(body)
		if kind := d.Uint8(); kind != frData {
			f.fatalf("link %d->%d: unexpected frame kind %d", src, f.rank, kind)
			return
		}
		size := d.Int()
		seq := d.Varint()
		payload := d.Any()
		if d.Err() != nil {
			f.fatalf("link %d->%d: decode: %v", src, f.rank, d.Err())
			return
		}
		link.mu.Lock()
		if seq <= link.lastSeq {
			link.mu.Unlock()
			if tr := f.tr; tr != nil {
				tr.Emit(trace.Event{Node: int32(f.rank), Kind: trace.EvMsgDup,
					Peer: int32(src), Aux: seq})
			}
			continue
		}
		if seq != link.lastSeq+1 {
			last := link.lastSeq
			link.mu.Unlock()
			f.fatalf("link %d->%d: sequence hole: got %d after %d (message lost)",
				src, f.rank, seq, last)
			return
		}
		link.lastSeq = seq
		link.accepted++
		needAck := link.accepted >= f.opts.AckEvery
		if needAck {
			link.accepted = 0
		}
		// Enqueue under the link mutex: an overlapping readLoop for the
		// same src (old + resumed connection) must not interleave
		// out-of-order into the inbox.
		select {
		case f.inbox <- inMsg{m: fabricMsg(src, f.rank, size, payload), seq: seq}:
			link.mu.Unlock()
		case <-f.fail:
			link.mu.Unlock()
			return
		}
		if needAck {
			if err := f.sendAck(conn, bw, seq); err != nil {
				return // dialer repairs; the resumed incarnation re-acks
			}
		}
	}
}
