package netfab

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"samsys/internal/wire"
)

// Frame kinds. Every TCP segment stream is a sequence of length-prefixed
// frames (uvarint byte count, then the body); the first body byte is the
// kind. A connection's first frame declares its role: frRegister opens a
// control connection to the rendezvous node, frHello opens a one-way data
// link. Control frames implement the bootstrap and the end-of-run barrier;
// frData carries one fabric message.
const (
	frRegister = iota + 1 // peer -> rank 0: rank, n, listen addr, registry hash
	frWelcome             // rank 0 -> peer: n, addrs[0..n), registry hash
	frReady               // peer -> rank 0: received the address map
	frGo                  // rank 0 -> peer: everyone is ready, start Run
	frDone                // peer -> rank 0: local application process finished
	frAllDone             // rank 0 -> peer: every application finished, shut down
	frHello               // dialer -> acceptor: src rank of this data link
	frData                // one fabric message: modeled size, per-link seq, payload
)

// maxFrame bounds a frame body; data items are at most a few hundred MB in
// any reasonable run, and a hostile length must not allocate unbounded
// memory.
const maxFrame = 1 << 30

// writeFrame appends the uvarint length prefix and body to w. The caller
// decides when to Flush (the per-peer writer batches).
func writeFrame(w *bufio.Writer, body []byte) error {
	var e wire.Encoder
	e.Uvarint(uint64(len(body)))
	if _, err := w.Write(e.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame body.
func readFrame(r *bufio.Reader) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("netfab: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		c, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, fmt.Errorf("netfab: frame length overflows uint64")
			}
			return x | uint64(c)<<s, nil
		}
		if i == 9 {
			return 0, fmt.Errorf("netfab: frame length overflows uint64")
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
}

// dialRetry dials addr until it succeeds or the deadline passes, backing
// off exponentially from 5ms to 300ms between attempts. Peers of a cluster
// start in arbitrary order, so early dials routinely hit "connection
// refused" — retry is part of the bootstrap contract, not error handling.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 5 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true) // frames are batched by the writer, not the kernel
			}
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("netfab: dial %s: %w", addr, err)
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > 300*time.Millisecond {
			backoff = 300 * time.Millisecond
		}
	}
}

// outCap bounds each outgoing peer queue (frames). A full queue makes Send
// service the local inbox while retrying, mirroring gofab's backpressure.
const outCap = 1 << 12

// peer is one outgoing data link: a dialed connection plus a writer
// goroutine that batches queued frames into single flushes.
type peer struct {
	dst  int
	out  chan []byte
	conn net.Conn
}

// newPeer dials dst's listener, queues the link hello and starts the
// batching writer.
func (f *Fab) newPeer(dst int) (*peer, error) {
	conn, err := dialRetry(f.addrs[dst], time.Now().Add(f.bootTimeout))
	if err != nil {
		return nil, fmt.Errorf("link %d->%d: %w", f.rank, dst, err)
	}
	var hello wire.Encoder
	hello.Uint8(frHello)
	hello.Int(f.rank)
	p := &peer{dst: dst, out: make(chan []byte, outCap), conn: conn}
	p.out <- hello.Bytes()
	go f.writeLoop(p)
	return p, nil
}

// writeLoop writes queued frames, coalescing every frame already in the
// queue into one buffered write and flushing only when the queue drains
// momentarily — sends issued back-to-back by the application (a push
// followed by the task that consumes it, a burst of protocol replies)
// leave in one TCP write. Closing p.out flushes and closes the connection.
func (f *Fab) writeLoop(p *peer) {
	bw := bufio.NewWriterSize(p.conn, 64<<10)
	defer p.conn.Close()
	for {
		frame, ok := <-p.out // block until there is something to write
		if !ok {
			bw.Flush()
			return
		}
	batch:
		for {
			if err := writeFrame(bw, frame); err != nil {
				f.fatalf("link %d->%d: write: %v", f.rank, p.dst, err)
				return
			}
			select {
			case frame, ok = <-p.out:
				if !ok {
					break batch
				}
			default:
				break batch
			}
		}
		if err := bw.Flush(); err != nil {
			f.fatalf("link %d->%d: flush: %v", f.rank, p.dst, err)
			return
		}
		if !ok {
			return
		}
	}
}

// acceptLoop accepts incoming connections for the fabric's whole lifetime:
// control registrations during bootstrap (rank 0) and data links any time.
func (f *Fab) acceptLoop() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			if !f.closing.Load() {
				f.fatalf("accept: %v", err)
			}
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		go f.serveConn(conn)
	}
}

// serveConn classifies a new connection by its first frame and serves it.
func (f *Fab) serveConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	body, err := readFrame(br)
	if err != nil {
		if !f.closing.Load() {
			f.fatalf("handshake read: %v", err)
		}
		conn.Close()
		return
	}
	d := wire.NewDecoder(body)
	switch kind := d.Uint8(); kind {
	case frRegister:
		if f.rank != 0 {
			f.fatalf("registration frame on non-rendezvous node %d", f.rank)
			conn.Close()
			return
		}
		rank := d.Int()
		n := d.Int()
		addr := d.String()
		hash := d.Uvarint()
		if d.Err() != nil {
			f.fatalf("bad registration: %v", d.Err())
			conn.Close()
			return
		}
		f.boot.regCh <- registration{conn: conn, br: br, rank: rank, n: n, addr: addr, hash: hash}
	case frHello:
		src := d.Int()
		if d.Err() != nil || src < 0 || src >= f.n {
			f.fatalf("bad link hello from %s", conn.RemoteAddr())
			conn.Close()
			return
		}
		f.readLoop(conn, br, src)
	default:
		f.fatalf("unexpected first frame kind %d from %s", kind, conn.RemoteAddr())
		conn.Close()
	}
}

// readLoop decodes data frames from one incoming link and queues them on
// the node's inbox. One goroutine per link keeps per-(src,dst) FIFO order:
// frames enter the inbox in exactly the order src wrote them.
func (f *Fab) readLoop(conn net.Conn, br *bufio.Reader, src int) {
	defer conn.Close()
	for {
		body, err := readFrame(br)
		if err != nil {
			// EOF after the cluster finished is the normal link teardown.
			if !f.closing.Load() && err != io.EOF {
				f.fatalf("link %d->%d: read: %v", src, f.rank, err)
			}
			return
		}
		d := wire.NewDecoder(body)
		if kind := d.Uint8(); kind != frData {
			f.fatalf("link %d->%d: unexpected frame kind %d", src, f.rank, kind)
			return
		}
		size := d.Int()
		seq := d.Varint()
		payload := d.Any()
		if d.Err() != nil {
			f.fatalf("link %d->%d: decode: %v", src, f.rank, d.Err())
			return
		}
		select {
		case f.inbox <- inMsg{m: fabricMsg(src, f.rank, size, payload), seq: seq}:
		case <-f.fail:
			return
		}
	}
}
