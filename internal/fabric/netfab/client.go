package netfab

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"samsys/internal/wire"
)

// External client connections. A netfab rank's listener accepts, besides
// rank data links and bootstrap control connections, a third connection
// role: an external client that is not a member of the cluster. The
// client's first frame is frClient carrying its wire-registry hash; the
// rank verifies the hash (client and cluster must agree on every type id,
// just as ranks do at bootstrap) and replies with a welcome frame naming
// its rank, the cluster size and every rank's listener address — enough
// for the client to reach any rank directly. Every subsequent frame in
// either direction is one wire-encoded value (wire.Marshal form, no kind
// byte; the connection is already classified).
//
// What those values mean is not netfab's business: a rank hands accepted
// client connections to the handler installed with SetClientHandler
// (internal/store registers its request executor there), and clients dial
// with DialClient. Client connections carry no per-link sequencing or
// resend window — they are request/response conversations whose loss
// semantics belong to the layer above, unlike rank links whose exactly-
// once delivery the SAM protocol depends on.

// ClientHandler serves one accepted external client connection. It runs
// on the connection's own goroutine — never on the rank's application
// goroutine — and returns when the conversation is over; the connection
// is closed after it returns.
type ClientHandler func(*ClientConn)

// ClientConn is one framed external connection, either side. ReadMsg is
// single-consumer; WriteMsg is safe for concurrent use.
type ClientConn struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	writeTO time.Duration
	rank, n int
	addrs   []string

	closed atomic.Bool
}

// Rank returns the rank this connection talks to.
func (cc *ClientConn) Rank() int { return cc.rank }

// N returns the cluster size the rank reported.
func (cc *ClientConn) N() int { return cc.n }

// Addrs returns every rank's listener address (client side; nil on the
// serving side).
func (cc *ClientConn) Addrs() []string { return cc.addrs }

// RemoteAddr returns the peer's network address.
func (cc *ClientConn) RemoteAddr() net.Addr { return cc.conn.RemoteAddr() }

// ReadMsg reads one wire-encoded value and reports its encoded size in
// bytes (for accounting above this layer).
func (cc *ClientConn) ReadMsg() (any, int, error) {
	body, err := readFrame(cc.br)
	if err != nil {
		return nil, 0, err
	}
	v, err := wire.Unmarshal(body)
	if err != nil {
		return nil, len(body), fmt.Errorf("netfab: client frame: %w", err)
	}
	return v, len(body), nil
}

// WriteMsg writes one wire-encoded value as a single flushed frame. The
// value's type must be wire-registered.
func (cc *ClientConn) WriteMsg(v any) error {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	e.Any(v)
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cc.conn.SetWriteDeadline(time.Now().Add(cc.writeTO))
	if err := writeFrame(cc.bw, e.Bytes()); err != nil {
		return err
	}
	return cc.bw.Flush()
}

// WriteRaw writes one pre-encoded value (wire.Marshal form) as a single
// flushed frame; it lets a caller that already paid for the encoding (for
// accounting, say) avoid a second pass.
func (cc *ClientConn) WriteRaw(body []byte) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cc.conn.SetWriteDeadline(time.Now().Add(cc.writeTO))
	if err := writeFrame(cc.bw, body); err != nil {
		return err
	}
	return cc.bw.Flush()
}

// Close closes the connection; idempotent, and safe concurrently with
// blocked reads and writes (they return errors).
func (cc *ClientConn) Close() error {
	if cc.closed.Swap(true) {
		return nil
	}
	return cc.conn.Close()
}

// SetClientHandler installs the serving callback for external client
// connections. Install it before clients dial; a rank with no handler
// refuses client connections. Safe from any goroutine.
func (f *Fab) SetClientHandler(h ClientHandler) {
	f.clientMu.Lock()
	f.clientHandler = h
	f.clientMu.Unlock()
}

// Addr returns this rank's listener address, which serves rank links and
// client connections alike.
func (f *Fab) Addr() string { return f.ln.Addr().String() }

// serveClient finishes the handshake for an accepted frClient connection
// and runs the installed handler on this goroutine. Handshake failures
// drop the connection; an external client can never be fatal to the rank.
func (f *Fab) serveClient(conn net.Conn, br *bufio.Reader, d *wire.Decoder) {
	hash := d.Uvarint()
	if d.Err() != nil || hash != wire.Hash() {
		conn.Close()
		return
	}
	f.clientMu.Lock()
	h := f.clientHandler
	f.clientMu.Unlock()
	if h == nil {
		conn.Close()
		return
	}
	e := wire.GetEncoder()
	e.Uint8(frClient)
	e.Int(f.rank)
	e.Int(f.n)
	e.Int(len(f.addrs))
	for _, a := range f.addrs {
		e.String(a)
	}
	bw := bufio.NewWriterSize(conn, 32<<10)
	conn.SetWriteDeadline(time.Now().Add(f.opts.Write))
	err := writeFrame(bw, e.Bytes())
	if err == nil {
		err = bw.Flush()
	}
	conn.SetWriteDeadline(time.Time{})
	wire.PutEncoder(e)
	if err != nil {
		conn.Close()
		return
	}
	cc := &ClientConn{conn: conn, br: br, bw: bw, writeTO: f.opts.Write, rank: f.rank, n: f.n}
	defer cc.Close()
	h(cc)
}

// DialClient connects to a rank's listener as an external client and runs
// the hash-verifying handshake. The returned connection reports the
// rank's id, the cluster size and every rank's address.
func DialClient(addr string, timeout time.Duration) (*ClientConn, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("netfab: client dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	bw := bufio.NewWriterSize(conn, 32<<10)
	e := wire.GetEncoder()
	e.Uint8(frClient)
	e.Uvarint(wire.Hash())
	conn.SetWriteDeadline(time.Now().Add(timeout))
	err = writeFrame(bw, e.Bytes())
	if err == nil {
		err = bw.Flush()
	}
	wire.PutEncoder(e)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("netfab: client hello to %s: %w", addr, err)
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	br := bufio.NewReaderSize(conn, 32<<10)
	body, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("netfab: client welcome from %s: %w (registry mismatch?)", addr, err)
	}
	conn.SetReadDeadline(time.Time{})
	conn.SetWriteDeadline(time.Time{})
	d := wire.NewDecoder(body)
	if kind := d.Uint8(); kind != frClient {
		conn.Close()
		return nil, fmt.Errorf("netfab: unexpected welcome frame kind %d from %s", kind, addr)
	}
	rank := d.Int()
	n := d.Int()
	na := d.Int()
	if d.Err() != nil || n < 1 || na != n || rank < 0 || rank >= n {
		conn.Close()
		return nil, fmt.Errorf("netfab: bad client welcome from %s", addr)
	}
	addrs := make([]string, na)
	for i := range addrs {
		addrs[i] = d.String()
	}
	if d.Err() != nil {
		conn.Close()
		return nil, fmt.Errorf("netfab: bad client welcome from %s: %v", addr, d.Err())
	}
	return &ClientConn{
		conn: conn, br: br, bw: bw, writeTO: 10 * time.Second,
		rank: rank, n: n, addrs: addrs,
	}, nil
}
