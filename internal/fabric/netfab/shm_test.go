package netfab

import (
	"fmt"
	"testing"

	"samsys/internal/fabric"
	"samsys/internal/fabric/fabtest"
	"samsys/internal/fabric/shmfab"
	"samsys/internal/machine"
	"samsys/internal/pack"
	"samsys/internal/stats"
	"samsys/internal/trace"
)

func skipWithoutShm(t *testing.T) {
	t.Helper()
	if !shmfab.Available("") {
		t.Skip("shm lanes unavailable on this platform")
	}
}

// sameHost puts every rank on one simulated host, turning every data link
// of a loopback cluster into an shm lane.
func sameHost(n int) []string {
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = "h"
	}
	return hosts
}

// TestShmConformance runs the full fabric conformance suite over a
// loopback cluster whose data links are all shm lanes: the bootstrap,
// control plane and end-of-run barrier stay TCP, every message rides
// shared memory.
func TestShmConformance(t *testing.T) {
	skipWithoutShm(t)
	fabtest.Run(t, func(n int) (fabric.Fabric, error) {
		return NewLocal(machine.CM5, n, WithShm(ShmAuto), WithHosts(sameHost(n)))
	})
}

// TestShmChaos runs the fault-injection matrix over all-shm data links.
// The Cluster implements LinkResetter, so every reset rule must fire for
// real — hitting the shm branch of InjectLinkReset — and, since shared
// memory drops nothing on a reset, results must match the fault-free
// reference exactly.
func TestShmChaos(t *testing.T) {
	skipWithoutShm(t)
	fabtest.RunChaos(t, func(n int) (fabric.Fabric, error) {
		return NewLocal(machine.CM5, n, WithShm(ShmAuto), WithHosts(sameHost(n)))
	})
}

// altHosts alternates ranks between two simulated hosts, so a cluster
// mixes shm links (rank parity equal) and TCP links (parity differs).
func altHosts(n int) []string {
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = string(rune('a' + i%2))
	}
	return hosts
}

// TestHybridConformance runs the conformance suite over a cluster whose
// links genuinely mix transports: intra-host pairs ride shm lanes,
// cross-host pairs ride TCP, and the fabric contract (FIFO, exclusion,
// events, accounting, counters) must hold identically across both.
func TestHybridConformance(t *testing.T) {
	skipWithoutShm(t)
	fabtest.Run(t, func(n int) (fabric.Fabric, error) {
		return NewLocal(machine.CM5, n, WithShm(ShmAuto), WithHosts(altHosts(n)))
	})
}

// TestHybridChaos runs the fault-injection matrix over mixed transports:
// reset rules hit TCP links (redial + resend) and shm links (in-place
// lane reinit) in one run, and results must match the fault-free
// reference either way.
func TestHybridChaos(t *testing.T) {
	skipWithoutShm(t)
	fabtest.RunChaos(t, func(n int) (fabric.Fabric, error) {
		return NewLocal(machine.CM5, n, WithShm(ShmAuto), WithHosts(altHosts(n)))
	})
}

// TestShmHybrid simulates a two-host cluster inside one process: ranks
// 0,1 on host "a", ranks 2,3 on host "b". Every rank sends to every other
// rank; the trace must show shared-memory sends on exactly the intra-host
// ordered pairs and TCP sends on exactly the cross-host ones, with
// message conservation holding across both transports.
func TestShmHybrid(t *testing.T) {
	skipWithoutShm(t)
	const n = 4
	hosts := []string{"a", "a", "b", "b"}
	cl, err := NewLocal(machine.CM5, n, WithShm(ShmAuto), WithHosts(hosts))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	rec.SetCapacity(1 << 16)
	ck := trace.NewChecker(func(format string, args ...any) {
		t.Errorf("checker: "+format, args...)
	})
	ck.Attach(rec)
	cl.SetTracer(rec)

	const msgs = 50
	want := (n - 1) * msgs
	got := make([]int, n)
	done := make([]fabric.Event, n)
	cl.SetHandler(func(hc fabric.Ctx, m fabric.Message) {
		if got[m.Dst]++; got[m.Dst] == want {
			done[m.Dst].Signal()
		}
	})
	err = cl.Run(func(c fabric.Ctx) {
		me := c.Node()
		done[me] = c.NewEvent()
		// Mix small (inline) and large (arena handoff) payloads.
		big := make(pack.Float64s, 1024)
		for i := 0; i < msgs; i++ {
			for dst := 0; dst < n; dst++ {
				if dst == me {
					continue
				}
				if i%10 == 0 {
					c.Send(dst, 8*len(big), big)
				} else {
					c.Send(dst, 16, pack.Ints{me, i})
				}
			}
		}
		done[me].Wait(c, stats.Wait)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Finish(); err != nil {
		t.Fatalf("checker finish: %v", err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d events; raise capacity", rec.Dropped())
	}

	shmLinks := map[string]int{}
	tcpLinks := map[string]int{}
	sends, delivers, arena := 0, 0, 0
	for _, ev := range rec.Events() {
		link := fmt.Sprintf("%d->%d", ev.Node, ev.Peer)
		switch ev.Kind {
		case trace.EvShmSend:
			shmLinks[link]++
			sends++
		case trace.EvMsgSend:
			tcpLinks[link]++
			sends++
		case trace.EvMsgDeliver:
			delivers++
		case trace.EvShmArena:
			arena++
		}
	}
	if sends != delivers {
		t.Errorf("conservation: %d sends vs %d delivers", sends, delivers)
	}
	if arena == 0 {
		t.Error("no arena handoffs traced; large payloads took the wrong path")
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			link := fmt.Sprintf("%d->%d", src, dst)
			intra := hosts[src] == hosts[dst]
			if intra && (shmLinks[link] != msgs || tcpLinks[link] != 0) {
				t.Errorf("intra-host link %s: %d shm / %d tcp sends, want %d/0",
					link, shmLinks[link], tcpLinks[link], msgs)
			}
			if !intra && (tcpLinks[link] != msgs || shmLinks[link] != 0) {
				t.Errorf("cross-host link %s: %d tcp / %d shm sends, want %d/0",
					link, tcpLinks[link], shmLinks[link], msgs)
			}
		}
	}
}

// TestShmOffUnchanged pins the default: without WithShm the cluster
// behaves exactly as before — no segment files, no shm trace events.
func TestShmOffUnchanged(t *testing.T) {
	const n = 2
	cl, err := NewLocal(machine.CM5, n)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	cl.SetTracer(rec)
	done := make([]fabric.Event, n)
	cl.SetHandler(func(hc fabric.Ctx, m fabric.Message) {
		done[m.Dst].Signal()
	})
	err = cl.Run(func(c fabric.Ctx) {
		me := c.Node()
		done[me] = c.NewEvent()
		c.Send(1-me, 16, pack.Ints{me})
		done[me].Wait(c, stats.Wait)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.EvShmSend || ev.Kind == trace.EvShmArena {
			t.Fatalf("shm event %v in a ShmOff cluster", ev.Kind)
		}
	}
}
