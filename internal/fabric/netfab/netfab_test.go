package netfab

import (
	"fmt"
	"testing"

	"samsys/internal/core"
	"samsys/internal/fabric"
	"samsys/internal/fabric/fabtest"
	"samsys/internal/machine"
	"samsys/internal/pack"
	"samsys/internal/stats"
	"samsys/internal/trace"
	"samsys/internal/wire"
)

// TestConformance runs the shared fabric contract suite against a loopback
// TCP cluster: every message crosses the full wire path (encode, frame,
// batch, socket, decode).
func TestConformance(t *testing.T) {
	fabtest.Run(t, func(n int) (fabric.Fabric, error) {
		cl, err := NewLocal(machine.CM5, n)
		if err != nil {
			return nil, err
		}
		return cl, nil
	})
}

// TestChaos runs the fault-injection conformance matrix over real TCP:
// scheduled delays hold sends, scheduled resets sever live connections
// mid-burst, and the seq/ack resend machinery must keep delivery
// exactly-once, in order, with results identical to the fault-free run.
func TestChaos(t *testing.T) {
	fabtest.RunChaos(t, func(n int) (fabric.Fabric, error) {
		// A small ack batch keeps the unacked resend window non-trivial
		// at reset time without needing huge bursts.
		cl, err := NewLocalOpts(machine.CM5, n, Options{AckEvery: 8})
		if err != nil {
			return nil, err
		}
		return cl, nil
	})
}

// TestSAMOnNetfab runs a real SAM program — accumulator updates under
// barriers — across TCP nodes. Payloads here are pack items and core
// protocol messages, all wire-registered.
func TestSAMOnNetfab(t *testing.T) {
	const n = 4
	cl, err := NewLocal(machine.CM5, n)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWorld(cl, core.Options{})
	results := make([]int64, n)
	err = w.Run(func(c *core.Ctx) {
		acc := core.N1(1, 1)
		if c.Node() == 0 {
			c.CreateAccum(acc, pack.Ints{0})
		}
		c.Barrier()
		for i := 0; i < 10; i++ {
			a := c.BeginUpdateAccum(acc).(pack.Ints)
			a[0]++
			c.EndUpdateAccum(acc)
		}
		c.Barrier()
		if c.Node() == 0 {
			a := c.BeginUpdateAccum(acc).(pack.Ints)
			results[0] = int64(a[0])
			c.EndUpdateAccum(acc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != n*10 {
		t.Errorf("accumulator = %d, want %d", results[0], n*10)
	}
}

// TestSAMValuesAndTasksOnNetfab exercises values, task spawning and the
// termination protocol over TCP.
func TestSAMValuesAndTasksOnNetfab(t *testing.T) {
	const n = 3
	cl, err := NewLocal(machine.IPSC, n)
	if err != nil {
		t.Fatal(err)
	}
	w := core.NewWorld(cl, core.Options{})
	processed := make([]int64, n)
	err = w.Run(func(c *core.Ctx) {
		val := core.N1(2, 7)
		if c.Node() == 0 {
			c.CreateValue(val, pack.Ints{99}, core.UsesUnlimited)
			for i := 0; i < 12; i++ {
				c.SpawnTask(i%n, taskProbe{int32(i)}, 8)
			}
		}
		for {
			_, ok := c.NextTask()
			if !ok {
				break
			}
			v := c.BeginUseValue(val).(pack.Ints)
			if v[0] != 99 {
				t.Errorf("value = %d", v[0])
			}
			c.EndUseValue(val)
			processed[c.Node()]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range processed {
		total += p
	}
	if total != 12 {
		t.Errorf("processed %d tasks, want 12", total)
	}
}

// TestTraceCheckersOnLoopback attaches the PR-1 online protocol checker to
// a loopback TCP run: per-link FIFO and message conservation must hold on
// the real wire path, and Finish must see no undelivered messages
// (quiescent application + netfab's tail drain).
func TestTraceCheckersOnLoopback(t *testing.T) {
	const n = 3
	cl, err := NewLocal(machine.CM5, n)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	rec.SetCapacity(1 << 18)
	var violations []string
	ck := trace.NewChecker(func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	})
	ck.Attach(rec)
	cl.SetTracer(rec)
	w := core.NewWorld(cl, core.Options{Trace: rec})
	err = w.Run(func(c *core.Ctx) {
		acc := core.N1(3, 3)
		val := core.N1(4, 4)
		if c.Node() == 0 {
			c.CreateAccum(acc, pack.Ints{0})
			c.CreateValue(val, pack.Float64s{2.5}, core.UsesUnlimited)
		}
		c.Barrier()
		for i := 0; i < 5; i++ {
			a := c.BeginUpdateAccum(acc).(pack.Ints)
			a[0]++
			c.EndUpdateAccum(acc)
			v := c.BeginUseValue(val).(pack.Float64s)
			if v[0] != 2.5 {
				t.Errorf("value = %v", v[0])
			}
			c.EndUseValue(val)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("online checker: %v (all: %v)", err, ck.Violations())
	}
	if err := ck.Finish(); err != nil {
		t.Fatalf("checker finish: %v", err)
	}
	if len(violations) > 0 {
		t.Fatalf("violations: %v", violations)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d events; raise capacity", rec.Dropped())
	}
	var sends, delivers int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.EvMsgSend:
			sends++
		case trace.EvMsgDeliver:
			delivers++
		}
	}
	if sends == 0 || delivers == 0 {
		t.Fatalf("expected transport events, got %d sends / %d delivers", sends, delivers)
	}
	if sends != delivers {
		t.Errorf("message conservation: %d sends vs %d delivers", sends, delivers)
	}
}

// TestJoinValidation covers configuration errors.
func TestJoinValidation(t *testing.T) {
	if _, err := Join(Config{Rank: 0, N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Join(Config{Rank: 2, N: 2}); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := Join(Config{Rank: 1, N: 2}); err == nil {
		t.Error("missing rendezvous accepted")
	}
}

// taskProbe is this test's task payload; tasks travel inside sam.task
// messages as self-described values, so the type must be wire-registered.
type taskProbe struct{ i int32 }

func init() {
	wire.Register("netfabtest.task",
		func(e *wire.Encoder, t taskProbe) { e.Varint(int64(t.i)) },
		func(d *wire.Decoder) taskProbe { return taskProbe{i: int32(d.Varint())} })
}

// TestRunTwiceFails mirrors the other fabrics' contract.
func TestRunTwiceFails(t *testing.T) {
	cl, err := NewLocal(machine.CM5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetHandler(func(fabric.Ctx, fabric.Message) {})
	if err := cl.Run(func(fabric.Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := cl.fabs[0].Run(func(fabric.Ctx) {}); err == nil {
		t.Error("second Run should fail")
	}
}

// TestChargeAndElapsed pins local accounting on a single-node cluster.
func TestChargeAndElapsed(t *testing.T) {
	cl, err := NewLocal(machine.CM5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetHandler(func(fabric.Ctx, fabric.Message) {})
	if err := cl.Run(func(c fabric.Ctx) {
		c.Charge(stats.App, 123456)
	}); err != nil {
		t.Fatal(err)
	}
	if got := cl.Report()[0].Acct[stats.App]; got != 123456 {
		t.Errorf("accounted %v, want 123456", got)
	}
	if cl.Elapsed() <= 0 {
		t.Error("no elapsed time")
	}
}
