package netfab

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"samsys/internal/wire"
)

// The bootstrap (rendezvous) protocol. Rank 0 is the rendezvous node:
// every other rank dials it, registers its rank and data-listener address,
// and blocks until rank 0 has heard from everyone. Rank 0 then broadcasts
// the complete address map (frWelcome), collects an acknowledgement from
// every peer (frReady) and releases them (frGo) — a barrier that
// guarantees no node enters Run before every listener in the cluster is
// reachable. The same control connections implement the end-of-run
// barrier: each rank reports frDone when its application process returns,
// and rank 0 answers with frAllDone once all N have, at which point
// message service stops and Run returns everywhere.
//
// Registration carries the wire registry hash (see wire.Hash): a cluster
// whose processes were built with different registered type sets fails at
// bootstrap instead of corrupting frames mid-run.
//
// It also carries the rank's shm advertisement — a host identity and a
// segment directory (both empty when shm is off or unsupported). The
// welcome echoes the full maps plus the boot id, and the existing
// ready/go barrier doubles as the lane-creation barrier: every rank
// creates its outbound lane segments before acking ready, so when frGo
// releases the cluster every inbound segment already exists on disk.

// registration is one decoded frRegister frame plus its connection.
type registration struct {
	conn   net.Conn
	br     *bufio.Reader
	rank   int
	n      int
	addr   string
	hash   uint64
	host   string // shm host identity; empty when the rank has no shm
	shmDir string // where the rank creates its outbound segments
}

// bootState carries the control-plane state that outlives bootstrap.
type bootState struct {
	regCh chan registration

	mu        sync.Mutex
	ctrl      []net.Conn // rank 0: control conns indexed by rank (nil for 0)
	ctrlConn  net.Conn   // rank > 0: connection to the rendezvous node
	doneCount int        // rank 0: application processes finished so far
	announced bool
}

func ctrlFrame(kind uint8, f func(*wire.Encoder)) []byte {
	var e wire.Encoder
	e.Uint8(kind)
	if f != nil {
		f(&e)
	}
	return e.Bytes()
}

// sendCtrl writes one control frame with its own flush; control traffic is
// rare (a handful of frames per run), so it is never batched.
func sendCtrl(conn net.Conn, body []byte) error {
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, body); err != nil {
		return err
	}
	return bw.Flush()
}

// bootstrapRendezvous runs rank 0's side: collect n-1 registrations,
// broadcast the address map, run the ready barrier, release everyone.
func (f *Fab) bootstrapRendezvous(deadline time.Time) error {
	b := f.boot
	b.ctrl = make([]net.Conn, f.n)
	f.addrs[0] = f.ln.Addr().String()
	f.bootID = newBootID()
	f.hostIDs[0], f.shmDirs[0] = f.hostID, f.shmDir
	if f.n == 1 {
		close(f.ready) // no peers to wait for
	}
	timeout := time.NewTimer(time.Until(deadline))
	defer timeout.Stop()
	for got := 0; got < f.n-1; got++ {
		select {
		case r := <-b.regCh:
			if r.rank < 1 || r.rank >= f.n {
				return fmt.Errorf("netfab: registration with rank %d outside [1,%d)", r.rank, f.n)
			}
			if r.n != f.n {
				return fmt.Errorf("netfab: rank %d joined expecting %d nodes, rendezvous has %d", r.rank, r.n, f.n)
			}
			if b.ctrl[r.rank] != nil {
				return fmt.Errorf("netfab: rank %d registered twice", r.rank)
			}
			if r.hash != wire.Hash() {
				return fmt.Errorf("netfab: rank %d has wire registry hash %#x, rendezvous has %#x (binaries differ)",
					r.rank, r.hash, wire.Hash())
			}
			b.ctrl[r.rank] = r.conn
			f.addrs[r.rank] = r.addr
			f.hostIDs[r.rank], f.shmDirs[r.rank] = r.host, r.shmDir
			// The ready ack and later the done report arrive on this
			// connection; one goroutine per peer consumes them.
			go f.ctrlReadLoop(r.conn, r.br, r.rank)
		case <-timeout.C:
			return fmt.Errorf("netfab: bootstrap timeout: %d of %d peers registered", got, f.n-1)
		}
	}
	// Rank 0's outbound lanes are created before the welcome goes out, so
	// its co-located peers can open them as soon as frGo releases them.
	if err := f.createShmLanes(); err != nil {
		return err
	}
	welcome := ctrlFrame(frWelcome, func(e *wire.Encoder) {
		e.Int(f.n)
		for _, a := range f.addrs {
			e.String(a)
		}
		e.Uvarint(wire.Hash())
		e.String(f.bootID)
		for i := 0; i < f.n; i++ {
			e.String(f.hostIDs[i])
			e.String(f.shmDirs[i])
		}
	})
	for rank := 1; rank < f.n; rank++ {
		if err := sendCtrl(b.ctrl[rank], welcome); err != nil {
			return fmt.Errorf("netfab: welcome to rank %d: %w", rank, err)
		}
	}
	// Ready barrier: wait for every peer's ack, then release.
	select {
	case <-f.ready:
	case <-timeout.C:
		return fmt.Errorf("netfab: bootstrap timeout waiting for ready acks")
	case <-f.fail:
		return f.err()
	}
	release := ctrlFrame(frGo, nil)
	for rank := 1; rank < f.n; rank++ {
		if err := sendCtrl(b.ctrl[rank], release); err != nil {
			return fmt.Errorf("netfab: go to rank %d: %w", rank, err)
		}
	}
	// The ready barrier just completed, so every peer's outbound segments
	// exist; open this rank's inbound lanes.
	return f.openShmLanes()
}

// ctrlReadLoop consumes control frames from one peer on rank 0: the ready
// ack during bootstrap, then the done report at end of run.
func (f *Fab) ctrlReadLoop(conn net.Conn, br *bufio.Reader, rank int) {
	for {
		body, err := readFrame(br)
		if err != nil {
			// EOF after the end-of-run barrier is the peer shutting down.
			if !f.closing.Load() && !f.ended() {
				f.fatalf("control link to rank %d lost: %v", rank, err)
			}
			return
		}
		d := wire.NewDecoder(body)
		switch kind := d.Uint8(); kind {
		case frReady:
			f.readyOnce()
		case frDone:
			f.peerDone()
		case frAbort:
			origin := d.Int()
			reason := d.String()
			f.fatalf("rank %d aborted: %s", origin, reason)
			return
		default:
			f.fatalf("unexpected control frame %d from rank %d", kind, rank)
			return
		}
	}
}

// ended reports whether the end-of-run barrier has completed.
func (f *Fab) ended() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// readyOnce counts ready acks; when all n-1 peers have acked, the ready
// barrier opens.
func (f *Fab) readyOnce() {
	f.boot.mu.Lock()
	defer f.boot.mu.Unlock()
	f.readyCount++
	if f.readyCount == f.n-1 {
		close(f.ready)
	}
}

// peerDone counts finished application processes (rank 0 only; its own
// process reports through appDone). The n-th report triggers frAllDone.
func (f *Fab) peerDone() {
	b := f.boot
	b.mu.Lock()
	defer b.mu.Unlock()
	b.doneCount++
	f.maybeAllDoneLocked()
}

func (f *Fab) maybeAllDoneLocked() {
	b := f.boot
	if b.doneCount < f.n || b.announced {
		return
	}
	b.announced = true
	alldone := ctrlFrame(frAllDone, nil)
	for rank := 1; rank < f.n; rank++ {
		if err := sendCtrl(b.ctrl[rank], alldone); err != nil {
			f.fatalf("alldone to rank %d: %v", rank, err)
		}
	}
	close(f.done)
}

// bootstrapJoin runs a non-zero rank's side: dial the rendezvous node with
// retry, register, receive the address map, ack, wait for the release.
func (f *Fab) bootstrapJoin(rendezvous string, deadline time.Time) error {
	conn, err := dialRetry(rendezvous, deadline, f.opts.DialBackoff, f.opts.DialBackoffMax)
	if err != nil {
		return fmt.Errorf("netfab: rendezvous %s: %w", rendezvous, err)
	}
	f.boot.ctrlConn = conn
	reg := ctrlFrame(frRegister, func(e *wire.Encoder) {
		e.Int(f.rank)
		e.Int(f.n)
		e.String(f.ln.Addr().String())
		e.Uvarint(wire.Hash())
		e.String(f.hostID)
		e.String(f.shmDir)
	})
	if err := sendCtrl(conn, reg); err != nil {
		return fmt.Errorf("netfab: register: %w", err)
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(deadline)
	body, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("netfab: waiting for welcome: %w", err)
	}
	d := wire.NewDecoder(body)
	if kind := d.Uint8(); kind != frWelcome {
		return fmt.Errorf("netfab: expected welcome, got frame kind %d", kind)
	}
	n := d.Int()
	if n != f.n {
		return fmt.Errorf("netfab: rendezvous runs %d nodes, this process expects %d", n, f.n)
	}
	for i := 0; i < f.n; i++ {
		f.addrs[i] = d.String()
	}
	hash := d.Uvarint()
	f.bootID = d.String()
	for i := 0; i < f.n; i++ {
		f.hostIDs[i] = d.String()
		f.shmDirs[i] = d.String()
	}
	if d.Err() != nil {
		return fmt.Errorf("netfab: bad welcome: %w", d.Err())
	}
	if hash != wire.Hash() {
		return fmt.Errorf("netfab: wire registry hash mismatch with rendezvous (binaries differ)")
	}
	// Create outbound lane segments before acking ready: the barrier is
	// what guarantees every segment exists before any rank opens or sends.
	if err := f.createShmLanes(); err != nil {
		return err
	}
	if err := sendCtrl(conn, ctrlFrame(frReady, nil)); err != nil {
		return fmt.Errorf("netfab: ready: %w", err)
	}
	body, err = readFrame(br)
	if err != nil {
		return fmt.Errorf("netfab: waiting for go: %w", err)
	}
	if kind := wire.NewDecoder(body).Uint8(); kind != frGo {
		return fmt.Errorf("netfab: expected go, got frame kind %d", kind)
	}
	// frGo means every rank passed the ready barrier, so every co-located
	// peer's outbound segments exist; open this rank's inbound lanes.
	if err := f.openShmLanes(); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Time{})
	// From here the connection carries only the end-of-run barrier.
	go func() {
		for {
			body, err := readFrame(br)
			if err != nil {
				if !f.closing.Load() && !f.ended() {
					f.fatalf("control link to rendezvous lost: %v", err)
				}
				return
			}
			d := wire.NewDecoder(body)
			switch kind := d.Uint8(); kind {
			case frAllDone:
				close(f.done)
				return
			case frAbort:
				origin := d.Int()
				reason := d.String()
				f.fatalf("rank %d aborted: %s", origin, reason)
				return
			}
		}
	}()
	return nil
}

// appDone reports that the local application process returned.
func (f *Fab) appDone() {
	if f.rank == 0 {
		f.peerDone()
		return
	}
	f.boot.mu.Lock()
	conn := f.boot.ctrlConn
	f.boot.mu.Unlock()
	if err := sendCtrl(conn, ctrlFrame(frDone, func(e *wire.Encoder) { e.Int(f.rank) })); err != nil {
		f.fatalf("done report: %v", err)
	}
}
