package netfab

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"samsys/internal/fabric"
	"samsys/internal/fabric/shmfab"
	"samsys/internal/trace"
)

// Hybrid shared-memory support. Under Options.Shm = ShmAuto every rank
// advertises a host identity and a segment directory when it registers;
// the welcome broadcast carries the full maps plus a cluster-unique boot
// id. A rank then creates one outbound shmfab lane per co-located peer
// before entering the ready barrier — so by the time frGo releases the
// cluster, every lane segment exists — and opens its inbound lanes right
// after the barrier. ctx.Send routes to the lane when one exists and to
// TCP otherwise; the control plane (bootstrap, end-of-run barrier, abort
// propagation) always stays on TCP, which is what keeps rank-crash
// teardown bounded even for pure-shm pairs.

// bootSerial disambiguates boot ids of clusters spawned by one process.
var bootSerial atomic.Uint64

// newBootID names one cluster run; rank 0 generates it and the welcome
// broadcast distributes it. Unique per (rendezvous process, run) so two
// clusters sharing a segment directory cannot collide on lane paths.
func newBootID() string {
	return fmt.Sprintf("%d-%d", os.Getpid(), bootSerial.Add(1))
}

// resolveShm fixes this rank's host identity and segment directory from
// the options: empty hostID means the rank does not participate in shm
// pairing (mode off, platform unsupported, or no usable identity).
func (f *Fab) resolveShm() {
	if f.opts.Shm == ShmOff {
		return
	}
	hid := f.opts.HostID
	if f.opts.ShmHosts != nil {
		hid = ""
		if f.rank < len(f.opts.ShmHosts) {
			hid = f.opts.ShmHosts[f.rank]
		}
	} else if hid == "" {
		hid, _ = os.Hostname()
	}
	if hid == "" {
		return
	}
	dir := f.opts.ShmDir
	if dir == "" {
		dir = shmfab.DefaultDir()
	}
	if !shmfab.Available(dir) {
		return
	}
	f.hostID, f.shmDir = hid, dir
}

// shmPeer reports whether dst is a co-located distinct rank.
func (f *Fab) shmPeer(dst int) bool {
	return dst != f.rank && f.hostID != "" && f.hostIDs[dst] == f.hostID
}

// createShmLanes creates this rank's outbound lane segments. Runs after
// the host map is known and before the ready barrier, so every segment
// exists before any rank starts sending.
func (f *Fab) createShmLanes() error {
	for dst := 0; dst < f.n; dst++ {
		if !f.shmPeer(dst) {
			continue
		}
		path := shmfab.LanePath(f.shmDir, f.bootID, f.rank, dst)
		sl, err := shmfab.NewSendLane(path, f.opts.ShmRing, f.opts.ShmArena, f.opts.ShmInline)
		if err != nil {
			return fmt.Errorf("netfab: shm lane %d->%d: %w", f.rank, dst, err)
		}
		d := dst
		sl.OnSend = func(seq int64, size, bodyLen int, arenaCand bool) {
			if tr := f.tr; tr != nil {
				var a2 int64
				if arenaCand {
					a2 = 1
				}
				tr.Emit(trace.Event{Node: int32(f.rank), Kind: trace.EvShmSend,
					Peer: int32(d), Size: int64(size), Aux: seq, Aux2: a2})
			}
		}
		sl.OnArena = func(bytes, liveBlocks int) {
			if tr := f.tr; tr != nil {
				tr.Emit(trace.Event{Node: int32(f.rank), Kind: trace.EvShmArena,
					Peer: int32(d), Aux: int64(bytes), Aux2: int64(liveBlocks)})
			}
		}
		f.shmSend[dst] = sl
	}
	return nil
}

// openShmLanes opens this rank's inbound lanes, in each sender's
// advertised directory. Runs after the frGo barrier, which guarantees
// every sender has created its segments.
func (f *Fab) openShmLanes() error {
	for src := 0; src < f.n; src++ {
		if !f.shmPeer(src) {
			continue
		}
		path := shmfab.LanePath(f.shmDirs[src], f.bootID, src, f.rank)
		rl, err := shmfab.OpenRecvLane(path)
		if err != nil {
			return fmt.Errorf("netfab: shm lane %d->%d: %w", src, f.rank, err)
		}
		f.shmRecv[src] = rl
	}
	return nil
}

// startShmConsumers launches one consumer goroutine per inbound lane.
// Called at Run entry: frames sent by faster peers before that simply
// wait in the segment — shared memory is its own accept loop.
func (f *Fab) startShmConsumers() {
	for src, rl := range f.shmRecv {
		if rl != nil {
			f.shmWg.Add(1)
			go f.shmConsume(src, rl)
		}
	}
}

// shmConsume moves frames from one inbound lane into the node's inbox,
// spinning briefly and then parking on the lane futex. The first delivery
// after an actual sleep is recorded as a wake event.
func (f *Fab) shmConsume(src int, lane *shmfab.RecvLane) {
	defer f.shmWg.Done()
	spin := 0
	var sleptNs int64
	for {
		size, payload, seq, ok, err := lane.Poll()
		if err != nil {
			f.fatalf("shm lane %d->%d: %v", src, f.rank, err)
			return
		}
		if !ok {
			select {
			case <-f.stop:
				return
			case <-f.fail:
				return
			default:
			}
			if spin < 64 {
				spin++
				runtime.Gosched()
				continue
			}
			t0 := time.Now()
			if lane.WaitData() {
				sleptNs += int64(time.Since(t0))
			}
			continue
		}
		spin = 0
		if sleptNs > 0 {
			if tr := f.tr; tr != nil {
				tr.Emit(trace.Event{Node: int32(f.rank), Kind: trace.EvShmWake,
					Peer: int32(src), Aux: sleptNs})
			}
			sleptNs = 0
		}
		im := inMsg{m: fabricMsg(src, f.rank, size, payload), seq: seq}
		select {
		case f.inbox <- im:
		case <-f.stop:
			return
		case <-f.fail:
			return
		}
	}
}

// closeShmLanes stops nothing itself — call only after the consumers have
// exited (shutdown closes f.stop and waits), since touching a segment
// after unmap faults.
func (f *Fab) closeShmLanes() {
	for i, l := range f.shmRecv {
		if l != nil {
			l.Close()
			f.shmRecv[i] = nil
		}
	}
	for i, l := range f.shmSend {
		if l != nil {
			l.Close()
			f.shmSend[i] = nil
		}
	}
}

// ReleasePayload returns item's arena block (if any) to the inbound lane
// that delivered it. Implements fabric.PayloadReleaser for the local
// rank; items that never rode an shm lane fall through in a few pointer
// compares.
func (f *Fab) ReleasePayload(node int, item any) {
	if node != f.rank {
		return
	}
	for _, l := range f.shmRecv {
		if l != nil && l.Release(item) {
			return
		}
	}
}

// ReleasePayload forwards to the owning rank's Fab.
func (cl *Cluster) ReleasePayload(node int, item any) {
	if node >= 0 && node < len(cl.fabs) {
		cl.fabs[node].ReleasePayload(node, item)
	}
}

var _ fabric.PayloadReleaser = (*Fab)(nil)
var _ fabric.PayloadReleaser = (*Cluster)(nil)
