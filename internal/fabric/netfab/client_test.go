package netfab_test

import (
	"testing"
	"time"

	"samsys/internal/fabric"
	"samsys/internal/fabric/netfab"
	"samsys/internal/machine"
	"samsys/internal/pack"
)

// TestClientConn exercises the client-connection layer by itself: the
// hash-checked handshake, the welcome's cluster map, and framed message
// exchange against a handler, all independent of any SAM world.
func TestClientConn(t *testing.T) {
	cl, err := netfab.NewLocal(machine.CM5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl.SetHandler(func(fabric.Ctx, fabric.Message) {})
	cl.Fab(0).SetClientHandler(func(cc *netfab.ClientConn) {
		for {
			v, _, err := cc.ReadMsg()
			if err != nil {
				return
			}
			if err := cc.WriteMsg(v); err != nil {
				return
			}
		}
	})

	// Keep the ranks alive while the client talks; the handler runs on
	// the connection's goroutine, not the application's.
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- cl.Run(func(c fabric.Ctx) {
			if c.Node() == 0 {
				<-release
			}
		})
	}()

	cc, err := netfab.DialClient(cl.Fab(0).Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if cc.Rank() != 0 || cc.N() != 2 {
		t.Fatalf("welcome says rank %d of %d, want 0 of 2", cc.Rank(), cc.N())
	}
	addrs := cc.Addrs()
	if len(addrs) != 2 || addrs[0] != cl.Fab(0).Addr() || addrs[1] != cl.Fab(1).Addr() {
		t.Fatalf("welcome address map %v, want the rank listeners", addrs)
	}

	// Echo round trips through the registry-framed codec.
	if err := cc.WriteMsg(pack.Float64s{1.5, -2, 3e9}); err != nil {
		t.Fatalf("write: %v", err)
	}
	v, _, err := cc.ReadMsg()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	f, ok := v.(pack.Float64s)
	if !ok || len(f) != 3 || f[0] != 1.5 || f[1] != -2 || f[2] != 3e9 {
		t.Fatalf("echo = %#v, want the floats back", v)
	}
	if err := cc.WriteMsg(pack.Ints{7, -7}); err != nil {
		t.Fatalf("write ints: %v", err)
	}
	if v, _, err = cc.ReadMsg(); err != nil {
		t.Fatalf("read ints: %v", err)
	}
	if iv, ok := v.(pack.Ints); !ok || len(iv) != 2 || iv[0] != 7 {
		t.Fatalf("echo = %#v, want the ints back", v)
	}

	// Rank 1 has no client handler: its listener quietly closes client
	// connections before any welcome, so the dial fails without
	// disturbing the rank.
	if cc2, err := netfab.DialClient(cl.Fab(1).Addr(), 5*time.Second); err == nil {
		cc2.Close()
		t.Fatal("dial to a handlerless rank succeeded")
	}

	cc.Close()
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("cluster run: %v", err)
	}
}
