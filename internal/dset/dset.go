// Package dset is the distributed set abstraction the paper's Gröbner
// basis application builds on SAM (Section 4.3): a monotonically growing
// sequence of immutable elements. Elements are SAM values; the element
// count (the "head and tail pointers" of the paper's linked list) lives
// in a SAM accumulator. Readers may consult the count *chaotically* — a
// possibly stale local copy — which removes nearly all contention on the
// shared pointer at the cost of observing a slightly old set, exactly the
// trade the paper evaluates in Section 5.4.
package dset

import (
	"samsys/internal/core"
	"samsys/internal/pack"
)

// Set is a handle to a distributed set. All processors construct the same
// handle (same tag and id); one of them must call Create before use.
type Set struct {
	Tag uint8
	ID  int
}

// countItem is the shared tail-pointer accumulator payload.
type countItem struct{ n int64 }

func (c *countItem) SizeBytes() int   { return 16 }
func (c *countItem) Clone() pack.Item { cp := *c; return &cp }

func (s Set) countName() core.Name { return core.N2(s.Tag, s.ID, -1) }

// ElemName returns the SAM name of element i.
func (s Set) ElemName(i int64) core.Name {
	return core.N3(s.Tag, s.ID, int(i>>31), int(i&0x7fffffff))
}

// Create initializes the set (call on exactly one processor).
func (s Set) Create(c *core.Ctx) {
	c.CreateAccum(s.countName(), &countItem{})
}

// Add appends an element and returns its index. The count accumulator is
// acquired exclusively (it migrates here), so concurrent Adds from many
// processors are serialized and indices are unique.
func (s Set) Add(c *core.Ctx, item core.Item) int64 {
	ci, ref := core.Update[*countItem](c, s.countName())
	idx := ci.n
	ci.n++
	ref.Commit()
	c.CreateValue(s.ElemName(idx), item, core.UsesUnlimited)
	return idx
}

// AddIf appends the element only if the set still has exactly expected
// elements, returning (expected, true); otherwise it returns the current
// count and false. This compare-and-add lets a caller guarantee its
// element was derived from the complete current set — the Gröbner
// application uses it so a new polynomial is only added after reduction
// against every basis element present at add time.
func (s Set) AddIf(c *core.Ctx, expected int64, item core.Item) (int64, bool) {
	ci, ref := core.Update[*countItem](c, s.countName())
	if ci.n != expected {
		n := ci.n
		ref.Commit()
		return n, false
	}
	ci.n++
	ref.Commit()
	c.CreateValue(s.ElemName(expected), item, core.UsesUnlimited)
	return expected, true
}

// Len returns the exact element count, acquiring the accumulator.
func (s Set) Len(c *core.Ctx) int64 {
	ci, ref := core.Update[*countItem](c, s.countName())
	n := ci.n
	ref.Commit()
	return n
}

// LenChaotic returns a recent element count without synchronization: a
// stale local copy satisfies the read. Elements [0, n) are guaranteed to
// exist (the count is incremented before the element value is created, so
// a reader may briefly block on the newest element, but never sees a
// dangling index).
func (s Set) LenChaotic(c *core.Ctx) int64 {
	ci, ref := core.ReadChaotic[*countItem](c, s.countName())
	n := ci.n
	ref.Release()
	return n
}

// Get pins element i and returns it together with the borrow handle;
// drop the handle with Release. The element is fetched on first access
// and served from the SAM cache afterwards.
func (s Set) Get(c *core.Ctx, i int64) (core.Item, core.ValueRef) {
	ref := c.UseValue(s.ElemName(i))
	return ref.Item(), ref
}

// BeginGet pins element i and returns it; pair with EndGet.
//
// Deprecated: use Get, whose handle cannot release the wrong element.
func (s Set) BeginGet(c *core.Ctx, i int64) core.Item {
	return c.BeginUseValue(s.ElemName(i))
}

// EndGet releases element i.
//
// Deprecated: release the handle returned by Get instead.
func (s Set) EndGet(c *core.Ctx, i int64) {
	c.EndUseValue(s.ElemName(i))
}
