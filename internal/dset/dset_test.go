package dset

import (
	"testing"

	"samsys/internal/core"
	"samsys/internal/fabric/simfab"
	"samsys/internal/machine"
	"samsys/internal/pack"
)

func TestConcurrentAddsUniqueIndices(t *testing.T) {
	const nodes, perNode = 6, 10
	fab := simfab.New(machine.CM5, nodes)
	w := core.NewWorld(fab, core.Options{})
	got := make([][]int64, nodes)
	s := Set{Tag: 40, ID: 1}
	err := w.Run(func(c *core.Ctx) {
		if c.Node() == 0 {
			s.Create(c)
		}
		c.Barrier()
		for k := 0; k < perNode; k++ {
			idx := s.Add(c, pack.Ints{c.Node()*1000 + k})
			got[c.Node()] = append(got[c.Node()], idx)
		}
		c.Barrier()
		if c.Node() == 0 {
			if n := s.Len(c); n != nodes*perNode {
				t.Errorf("Len = %d, want %d", n, nodes*perNode)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, idxs := range got {
		for _, i := range idxs {
			if seen[i] {
				t.Fatalf("duplicate index %d", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != nodes*perNode {
		t.Errorf("got %d unique indices, want %d", len(seen), nodes*perNode)
	}
}

func TestElementsReadableEverywhere(t *testing.T) {
	const nodes = 4
	fab := simfab.New(machine.CM5, nodes)
	w := core.NewWorld(fab, core.Options{})
	s := Set{Tag: 40, ID: 2}
	err := w.Run(func(c *core.Ctx) {
		if c.Node() == 0 {
			s.Create(c)
			for k := 0; k < 8; k++ {
				s.Add(c, pack.Ints{k * k})
			}
		}
		c.Barrier()
		n := s.Len(c)
		for i := int64(0); i < n; i++ {
			it, ref := s.Get(c, i)
			if v := it.(pack.Ints); v[0] != int(i*i) {
				t.Errorf("element %d = %d, want %d", i, v[0], i*i)
			}
			ref.Release()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChaoticLenIsRecentAndCheap(t *testing.T) {
	const nodes = 3
	fab := simfab.New(machine.CM5, nodes)
	w := core.NewWorld(fab, core.Options{})
	s := Set{Tag: 40, ID: 3}
	err := w.Run(func(c *core.Ctx) {
		if c.Node() == 0 {
			s.Create(c)
			s.Add(c, pack.Ints{1})
			s.Add(c, pack.Ints{2})
		}
		c.Barrier()
		n1 := s.LenChaotic(c)
		if n1 < 0 || n1 > 2 {
			t.Errorf("chaotic len %d out of range", n1)
		}
		// Repeated chaotic reads on the same node are local.
		base := c.Counters().RemoteAccesses
		for i := 0; i < 5; i++ {
			s.LenChaotic(c)
		}
		if c.Counters().RemoteAccesses != base {
			t.Error("chaotic reads after the first should be local")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestElemNamesDistinct(t *testing.T) {
	s := Set{Tag: 40, ID: 4}
	seen := map[core.Name]bool{}
	for i := int64(0); i < 1000; i++ {
		n := s.ElemName(i)
		if seen[n] {
			t.Fatalf("name collision at %d", i)
		}
		seen[n] = true
	}
	if seen[s.countName()] {
		t.Error("count name collides with element names")
	}
	other := Set{Tag: 40, ID: 5}
	if s.ElemName(0) == other.ElemName(0) {
		t.Error("sets with different ids collide")
	}
}
